// Command benchgate records the simulator's performance baseline and
// gates regressions against a committed reference. It measures the
// hot-path microbenchmarks (event queue, controller service paths, the
// idle refresh sleep), the quick Fig1 campaign wall-clock at one
// worker, the simulated-cycles-per-second headline, and the
// trace-replay throughput over a committed zoo trace, then writes
// them as a BENCH_<date>.json artifact (docs/PERFORMANCE.md documents
// the schema).
//
//	benchgate                          # write BENCH_<today>.json
//	benchgate -out BENCH_ci.json -ref BENCH_2026-08-06.json
//
// With -ref, every measurement the reference flags with "gate": true
// is compared: the run fails (exit 1) when a time-based metric
// regresses by more than -tolerance (default 15%), or a
// higher-is-better metric drops by more than the same fraction. The
// campaign wall-clock and trace-replay throughput are gated by
// default; microbenchmarks are recorded for trend reading but are too
// noisy to fail a build on.
// Absolute numbers vary across machines; the gate is meant for
// same-machine comparisons (CI runners of one class, or a developer's
// before/after).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"ropsim"
	"ropsim/internal/addr"
	"ropsim/internal/dram"
	"ropsim/internal/event"
	"ropsim/internal/memctrl"
)

// benchSchema versions the artifact layout.
const benchSchema = 1

// Measurement is one recorded metric of a baseline artifact.
type Measurement struct {
	Name string `json:"name"`
	// Unit is "ns/op" for microbenchmarks, "ns" for campaign
	// wall-clock, "cycle/s" for simulation throughput.
	Unit           string  `json:"unit"`
	Value          float64 `json:"value"`
	AllocsPerOp    int64   `json:"allocs_per_op,omitempty"`
	HigherIsBetter bool    `json:"higher_is_better,omitempty"`
	// Gate marks the metric as regression-gated: -ref compares only
	// measurements flagged in the reference artifact. Campaign
	// wall-clock and trace-replay throughput are gated;
	// microbenchmarks and the simulation-throughput headline are
	// recorded for trend reading but too noisy to fail a build on.
	Gate bool   `json:"gate,omitempty"`
	Note string `json:"note,omitempty"`
}

// Baseline is the BENCH_<date>.json document.
type Baseline struct {
	Schema    int           `json:"schema"`
	Generated string        `json:"generated"`
	GoVersion string        `json:"go"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	CPUs      int           `json:"cpus"`
	Results   []Measurement `json:"results"`
}

func main() {
	out := flag.String("out", "", "output path (default BENCH_<today>.json)")
	ref := flag.String("ref", "", "reference BENCH_*.json to gate against")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional regression vs -ref")
	runs := flag.Int("runs", 3, "campaign repetitions (best run is recorded)")
	flag.Parse()
	if *out == "" {
		*out = "BENCH_" + time.Now().Format("2006-01-02") + ".json"
	}

	b := Baseline{
		Schema:    benchSchema,
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
	b.Results = append(b.Results, microBenchmarks()...)
	b.Results = append(b.Results, campaign(*runs)...)
	b.Results = append(b.Results, traceReplay(*runs))

	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	for _, m := range b.Results {
		fmt.Printf("%-40s %14.1f %s\n", m.Name, m.Value, m.Unit)
	}
	fmt.Printf("baseline -> %s\n", *out)

	if *ref != "" {
		if err := gate(b, *ref, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
		fmt.Printf("gate: within %.0f%% of %s\n", *tolerance*100, *ref)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(2)
}

// micro converts one testing.Benchmark result into a Measurement.
func micro(name string, f func(b *testing.B)) Measurement {
	r := testing.Benchmark(f)
	return Measurement{
		Name:        name,
		Unit:        "ns/op",
		Value:       float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// microBenchmarks mirrors the hot-path benchmarks of internal/event
// and internal/memctrl (kept in their bench_test.go files for `go test
// -bench`); benchgate re-measures them so the committed artifact is
// reproducible with one command.
func microBenchmarks() []Measurement {
	var ms []Measurement
	ms = append(ms, micro("event_schedule_step_near", func(b *testing.B) {
		var q event.Queue
		var fn func(now event.Cycle)
		fn = func(now event.Cycle) { q.Schedule(now+37, fn) }
		for i := 0; i < 64; i++ {
			q.Schedule(event.Cycle(i), fn)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Step()
		}
	}))
	ms = append(ms, micro("event_chained_sleep", func(b *testing.B) {
		var q event.Queue
		var fn func(now event.Cycle)
		fn = func(now event.Cycle) { q.ScheduleChained(now+97, fn) }
		q.ScheduleChained(97, fn)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Step()
		}
	}))
	ms = append(ms, micro("memctrl_read_row_hit", func(b *testing.B) {
		c, q := benchController(memctrl.ModeNoRefresh)
		readOnce(b, c, q, 5, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			readOnce(b, c, q, 5, i%64)
		}
	}))
	ms = append(ms, micro("memctrl_idle_refresh_cadence", func(b *testing.B) {
		c, q := benchController(memctrl.ModeBaseline)
		refi := c.Device().Params().REFI
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.RunUntil(q.Now() + refi)
		}
	}))
	return ms
}

func benchController(mode memctrl.Mode) (*memctrl.Controller, *event.Queue) {
	params := dram.DDR4_1600(dram.Refresh1x)
	if mode == memctrl.ModeNoRefresh {
		params = dram.NoRefresh(params)
	}
	q := &event.Queue{}
	dev := dram.NewDevice(params, addr.Geometry{
		Channels: 1, Ranks: 2, Banks: 8, Rows: 512, ColumnLines: 64,
	})
	return memctrl.MustNew(memctrl.DefaultConfig(mode), dev, q), q
}

func readOnce(b *testing.B, c *memctrl.Controller, q *event.Queue, row, col int) {
	done := false
	if !c.EnqueueRead(addr.Loc{Rank: 0, Bank: 0, Row: row, Col: col}, 0,
		func(event.Cycle) { done = true }) {
		b.Fatal("enqueue rejected")
	}
	for !done {
		if !q.Step() {
			b.Fatal("queue drained before read completed")
		}
	}
}

// campaign measures the quick Fig1 campaign at one worker (the ISSUE's
// ≥2x acceptance target) and the single-run simulation throughput.
func campaign(runs int) []Measurement {
	o := ropsim.QuickOptions()
	o.Jobs = 1
	best := time.Duration(1<<63 - 1)
	for i := 0; i < runs; i++ {
		start := time.Now()
		if _, err := ropsim.Fig1(o); err != nil {
			fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}

	cfg := ropsim.Default("libquantum")
	cfg.Mode = ropsim.ModeBaseline
	cfg.Instructions = 300_000
	start := time.Now()
	res, err := ropsim.Run(cfg)
	if err != nil {
		fatal(err)
	}
	wall := time.Since(start)
	cps := float64(res.ElapsedBus) / wall.Seconds()

	return []Measurement{
		{
			Name:  "fig1_quick_jobs1_wall",
			Unit:  "ns",
			Value: float64(best.Nanoseconds()),
			Gate:  true,
			Note:  fmt.Sprintf("best of %d", runs),
		},
		{
			Name:           "sim_bus_cycles_per_sec",
			Unit:           "cycle/s",
			Value:          cps,
			HigherIsBetter: true,
			Note:           "libquantum baseline, 300k instructions",
		},
	}
}

// traceReplayPath is the committed workload-zoo trace the replay gate
// times. benchgate runs from the repo root (the Makefile's bench and
// bench-gate targets), so the path is repo-relative.
const traceReplayPath = "testdata/traces/scan.ropt"

// traceReplay measures trace-replay throughput: a full simulator run
// driven by a committed zoo trace, reported as replayed requests per
// wall-clock second. The measurement is gated (docs/TRACES.md) so
// replay-path regressions cannot land silently.
func traceReplay(runs int) Measurement {
	cfg := ropsim.Default("trace:" + traceReplayPath)
	cfg.Mode = ropsim.ModeBaseline
	best := time.Duration(1<<63 - 1)
	var replayed float64
	for i := 0; i < runs; i++ {
		start := time.Now()
		res, err := ropsim.Run(cfg)
		if err != nil {
			fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
		replayed, _ = res.Metrics.Field("trace.core0.records_replayed", "value")
	}
	return Measurement{
		Name:           "trace_replay_reqs_per_sec",
		Unit:           "req/s",
		Value:          replayed / best.Seconds(),
		HigherIsBetter: true,
		Gate:           true,
		Note:           fmt.Sprintf("%s, best of %d", traceReplayPath, runs),
	}
}

// gate compares b against the reference artifact and returns an error
// describing every metric outside tolerance.
func gate(b Baseline, refPath string, tolerance float64) error {
	data, err := os.ReadFile(refPath)
	if err != nil {
		return err
	}
	var ref Baseline
	if err := json.Unmarshal(data, &ref); err != nil {
		return fmt.Errorf("parse %s: %w", refPath, err)
	}
	cur := make(map[string]Measurement, len(b.Results))
	for _, m := range b.Results {
		cur[m.Name] = m
	}
	var failures []string
	for _, want := range ref.Results {
		got, ok := cur[want.Name]
		if !ok || !want.Gate || want.Value <= 0 {
			continue
		}
		ratio := got.Value / want.Value
		if want.HigherIsBetter {
			if ratio < 1-tolerance {
				failures = append(failures, fmt.Sprintf(
					"%s dropped to %.0f%% of reference (%.1f vs %.1f %s)",
					want.Name, ratio*100, got.Value, want.Value, want.Unit))
			}
		} else if ratio > 1+tolerance {
			failures = append(failures, fmt.Sprintf(
				"%s regressed to %.0f%% of reference (%.1f vs %.1f %s)",
				want.Name, ratio*100, got.Value, want.Value, want.Unit))
		}
	}
	if len(failures) > 0 {
		msg := failures[0]
		for _, f := range failures[1:] {
			msg += "; " + f
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}
