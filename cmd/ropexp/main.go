// Command ropexp regenerates the paper's evaluation artifacts. Each
// experiment id corresponds to one figure or table; "all" runs the whole
// evaluation (see DESIGN.md §4 for the index).
//
//	ropexp -exp fig1
//	ropexp -exp fig2,fig3,fig4,tab1
//	ropexp -exp all -quick
//	ropexp -exp all -jobs 8 -progress
//	ropexp -exp fig10 -v
//	ropexp -exp fig1 -quick -stats-out fig1.stats.json
//	ropexp -exp all -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Independent simulation runs are fanned across -jobs worker goroutines
// (default: GOMAXPROCS). The rendered tables are byte-identical for any
// -jobs value and a fixed seed: results are assembled by submission
// order, never completion order. -stats-out additionally writes every
// run's full metric-registry snapshot (docs/METRICS.md documents the
// schema); the artifact is likewise byte-identical at any -jobs count.
//
// Campaigns are fault-tolerant (docs/ROBUSTNESS.md): -journal
// checkpoints every completed run, -resume serves checkpointed runs
// without re-simulating, -check validates every DRAM command against
// the JEDEC timing checker, -run-timeout arms a per-run watchdog, and
// -fail-policy picks fail-fast or run-to-completion on errors. SIGINT
// or SIGTERM cancels in-flight runs, flushes the partial artifact and
// journal, and exits with code 3; a second signal exits immediately.
//
// Campaigns also distribute: -serve host:port coordinates the campaign
// across worker processes (cmd/ropworker, or ropexp -connect), leasing
// runs to attached workers, re-dispatching them on worker loss, and
// falling back to in-process execution while none are attached — with
// a byte-identical artifact either way. -http serves live progress and
// per-worker health. See docs/ROBUSTNESS.md ("The distributed
// campaign") and EXPERIMENTS.md for recipes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"ropsim"
	"ropsim/internal/campaign"
	"ropsim/internal/runner"
)

// Exit codes: 0 success, 1 experiment failure, 2 usage error,
// 3 interrupted by signal (partial artifact and journal flushed).
// The authoritative definitions — shared with cmd/ropworker — live in
// internal/campaign and are documented in docs/ROBUSTNESS.md.
const (
	exitOK          = campaign.ExitOK
	exitFailure     = campaign.ExitFailure
	exitUsage       = campaign.ExitUsage
	exitInterrupted = campaign.ExitInterrupted
)

func main() {
	var (
		exps       = flag.String("exp", "all", "comma-separated experiment ids: fig1 fig2 fig3 fig4 tab1 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 abl-gate abl-pred abl-fgr abl-page policy policies future-bank xstd, or all")
		densities  = flag.String("densities", "", "restrict the policies sweep to comma-separated die densities in Gbit (default: 8,16,32,64)")
		quickF     = flag.Bool("quick", false, "reduced run lengths (smoke test scale)")
		insts      = flag.Int64("insts", 0, "override single-core instructions per run")
		minsts     = flag.Int64("minsts", 0, "override per-core instructions of 4-core runs")
		seed       = flag.Int64("seed", 1, "simulation seed")
		verbose    = flag.Bool("v", false, "log every completed run")
		benches    = flag.String("bench", "", "restrict to comma-separated benchmarks")
		jobs       = flag.Int("jobs", 0, "parallel simulation workers (0 = GOMAXPROCS, 1 = serial)")
		progress   = flag.Bool("progress", false, "print per-run progress with ETA to stderr")
		statsOut   = flag.String("stats-out", "", "write every run's metric snapshot to this file (.csv selects CSV, else JSON; see docs/METRICS.md)")
		journalF   = flag.String("journal", "", "checkpoint completed runs to this JSONL sidecar (see docs/ROBUSTNESS.md)")
		resumeF    = flag.Bool("resume", false, "serve runs already checkpointed in -journal without re-simulating")
		checkF     = flag.Bool("check", false, "validate every DRAM command against the JEDEC timing checker")
		standard   = flag.String("standard", "", "DRAM standard every experiment simulates (default DDR4-1600; xstd sweeps all regardless)")
		runTimeout = flag.Duration("run-timeout", 0, "per-run wall-clock watchdog deadline (0 = none)")
		failPolicy = flag.String("fail-policy", "failfast", "on run failure: failfast (cancel the batch) or continue (finish siblings, summarize at the end)")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the evaluation to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
		serveF     = flag.String("serve", "", "host:port to coordinate a distributed campaign on; workers attach with ropworker -connect (docs/ROBUSTNESS.md)")
		connectF   = flag.String("connect", "", "host:port of a coordinator to attach to as a worker (instead of running experiments)")
		httpF      = flag.String("http", "", "with -serve: host:port serving live campaign progress and per-worker health over HTTP")
		heartbeatE = flag.Duration("heartbeat", campaign.DefaultHeartbeatEvery, "with -serve: heartbeat interval dictated to workers")
		heartbeatM = flag.Duration("heartbeat-timeout", campaign.DefaultHeartbeatMiss, "with -serve: silence deadline after which a worker is declared lost and its runs re-dispatched")
	)
	flag.Parse()

	usageErr := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitUsage)
	}
	policy, err := runner.ParsePolicy(*failPolicy)
	if err != nil {
		usageErr(err)
	}
	if *resumeF && *journalF == "" {
		usageErr(errors.New("-resume requires -journal"))
	}
	if *serveF != "" && *connectF != "" {
		usageErr(errors.New("-serve and -connect are mutually exclusive"))
	}
	if *httpF != "" && *serveF == "" {
		usageErr(errors.New("-http requires -serve"))
	}
	if *heartbeatM <= *heartbeatE {
		usageErr(errors.New("-heartbeat-timeout must exceed -heartbeat"))
	}
	if *connectF != "" {
		// Worker mode: this process executes runs leased by a
		// coordinator instead of running its own campaign.
		os.Exit(workerMain(*connectF, *jobs, *verbose))
	}

	stopCPUProfile := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(exitFailure)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(exitFailure)
		}
		stopCPUProfile = func() { pprof.StopCPUProfile(); f.Close() }
	}

	o := ropsim.FullOptions()
	if *quickF {
		o = ropsim.QuickOptions()
	}
	if *insts > 0 {
		o.Instructions = *insts
	}
	if *minsts > 0 {
		o.MultiInstructions = *minsts
	}
	o.Seed = *seed
	if *verbose {
		o.Progress = os.Stderr
	}
	if *benches != "" {
		o.Benches = strings.Split(*benches, ",")
	}
	if *statsOut != "" {
		o.Artifact = ropsim.NewArtifact()
	}
	o.Check = *checkF
	o.RunTimeout = *runTimeout
	o.Standard = *standard
	if *densities != "" {
		for _, s := range strings.Split(*densities, ",") {
			var gb int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &gb); err != nil {
				usageErr(fmt.Errorf("bad -densities entry %q", s))
			}
			o.DensitiesGb = append(o.DensitiesGb, gb)
		}
	}

	if *journalF != "" {
		if !*resumeF {
			// A fresh (non-resuming) campaign starts from an empty
			// sidecar; stale entries must not be served.
			os.Remove(*journalF)
		}
		j, err := ropsim.OpenJournal(*journalF)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(exitFailure)
		}
		defer j.Close()
		o.Journal = j
		if *resumeF && j.Len() > 0 {
			fmt.Fprintf(os.Stderr, "journal: resuming past %d checkpointed runs\n", j.Len())
		}
	}

	// First SIGINT/SIGTERM cancels in-flight runs (workers drain, the
	// partial artifact and journal are flushed, exit code 3); a second
	// signal aborts the process immediately.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigCh
		fmt.Fprintf(os.Stderr, "ropexp: %v: cancelling in-flight runs (signal again to abort immediately)\n", s)
		cancel()
		<-sigCh
		os.Exit(campaign.ExitAborted)
	}()
	o.Ctx = ctx

	// One pool serves every selected experiment, so the final stats
	// line covers the whole evaluation.
	pool := runner.New(*jobs)
	pool.SetPolicy(policy)
	o.Jobs = pool.Jobs()
	o.Pool = pool
	if *progress {
		pool.SetProgress(func(ev runner.Event) {
			if ev.Err != nil {
				fmt.Fprintf(os.Stderr, "[%d/%d] %s FAILED: %v\n", ev.Completed, ev.Submitted, ev.Label, ev.Err)
				return
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %-40s %8s  eta %s\n",
				ev.Completed, ev.Submitted, ev.Label, ev.Duration.Round(1e6), ev.ETA.Round(1e8))
		})
	}

	// -serve turns this campaign into a distributed coordinator: runs
	// are leased to attached workers (and re-dispatched on worker
	// loss), falling back to in-process execution while none are
	// attached. Results merge through the same journal/artifact path
	// as local runs, so the artifact stays byte-identical.
	var coord *campaign.Coordinator
	if *serveF != "" {
		c, err := campaign.NewCoordinator(*serveF, campaign.CoordinatorOptions{
			Clock:          runner.WallClock{},
			HeartbeatEvery: *heartbeatE,
			HeartbeatMiss:  *heartbeatM,
			Local: ropsim.RemoteExec(func(ctx context.Context, _ string, cfg ropsim.Config) (*ropsim.Result, error) {
				return ropsim.RunCtx(ctx, cfg)
			}),
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(exitFailure)
		}
		coord = c
		fmt.Fprintf(os.Stderr, "campaign: coordinating on %s\n", coord.Addr())
		o.Remote = ropsim.RemoteDo(coord.Do)
		if *httpF != "" {
			go func() {
				if err := http.ListenAndServe(*httpF, coord.Handler()); err != nil {
					fmt.Fprintf(os.Stderr, "campaign: http: %v\n", err)
				}
			}()
		}
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]
	sel := func(ids ...string) bool {
		if all {
			return true
		}
		for _, id := range ids {
			if want[id] {
				return true
			}
		}
		return false
	}

	out := os.Stdout

	// flush writes the (possibly partial) stats artifact and the pool /
	// journal summary lines. Every exit path runs it — including
	// interrupts — so whatever completed is never lost.
	flush := func() {
		if s := pool.Stats(); s.Completed > 0 {
			fmt.Fprintf(os.Stderr, "runner: %s\n", s)
		}
		if o.Journal != nil {
			fmt.Fprintf(os.Stderr, "journal: %d checkpointed runs (%d served without re-simulating)\n",
				o.Journal.Len(), o.Journal.Hits())
		}
		if o.Artifact != nil {
			if err := o.Artifact.WriteFile(*statsOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			fmt.Fprintf(os.Stderr, "stats: %d run snapshots -> %s\n", o.Artifact.Len(), *statsOut)
		}
	}
	// closeCampaign winds a -serve coordinator down: a clean end drains
	// attached workers (they finish in-flight runs and exit 0); an
	// interrupt or failure aborts them immediately.
	closeCampaign := func(code int) {
		if coord == nil {
			return
		}
		if code == exitOK {
			coord.Close()
		} else {
			coord.Abort()
		}
	}
	finish := func(code int) {
		closeCampaign(code)
		flush()
		stopCPUProfile()
		os.Exit(code)
	}

	// fail handles one experiment's error: an interrupt flushes and
	// exits 3; otherwise fail-fast exits 1 immediately while
	// run-to-completion records the error and lets the remaining
	// experiments proceed.
	var campaignErrs []error
	fail := func(err error) {
		if ctx.Err() != nil || errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "ropexp: interrupted")
			finish(exitInterrupted)
		}
		var be *runner.BatchError
		if errors.As(err, &be) {
			fmt.Fprintln(os.Stderr, be.Summary())
		} else {
			fmt.Fprintln(os.Stderr, err)
		}
		if policy == runner.FailFast {
			finish(exitFailure)
		}
		campaignErrs = append(campaignErrs, err)
	}
	print := func(tables ...*ropsim.Table) {
		for _, t := range tables {
			t.Fprint(out)
			fmt.Fprintln(out)
		}
	}

	if sel("fig1") {
		t, err := ropsim.Fig1(o)
		if err != nil {
			fail(err)
		} else {
			print(t)
		}
	}
	if sel("fig2", "fig3", "fig4", "tab1") {
		f2, f3, f4, t1, err := ropsim.RefreshBehaviour(o)
		if err != nil {
			fail(err)
		} else {
			var show []*ropsim.Table
			if all || want["fig2"] {
				show = append(show, f2)
			}
			if all || want["fig3"] {
				show = append(show, f3)
			}
			if all || want["fig4"] {
				show = append(show, f4)
			}
			if all || want["tab1"] {
				show = append(show, t1)
			}
			print(show...)
		}
	}
	if sel("fig7", "fig8", "fig9") {
		f7, f8, f9, err := ropsim.Fig7to9(o)
		if err != nil {
			fail(err)
		} else {
			var show []*ropsim.Table
			if all || want["fig7"] {
				show = append(show, f7)
			}
			if all || want["fig8"] {
				show = append(show, f8)
			}
			if all || want["fig9"] {
				show = append(show, f9)
			}
			print(show...)
		}
	}
	if sel("fig10", "fig11") {
		f10, f11, err := ropsim.Fig10and11(o)
		if err != nil {
			fail(err)
		} else {
			var show []*ropsim.Table
			if all || want["fig10"] {
				show = append(show, f10)
			}
			if all || want["fig11"] {
				show = append(show, f11)
			}
			print(show...)
		}
	}
	if sel("fig12", "fig13", "fig14") {
		f12, f13, f14, err := ropsim.Fig12to14(o)
		if err != nil {
			fail(err)
		} else {
			var show []*ropsim.Table
			if all || want["fig12"] {
				show = append(show, f12)
			}
			if all || want["fig13"] {
				show = append(show, f13)
			}
			if all || want["fig14"] {
				show = append(show, f14)
			}
			print(show...)
		}
	}
	if sel("abl-gate") {
		t, err := ropsim.AblationGate(o)
		if err != nil {
			fail(err)
		} else {
			print(t)
		}
	}
	if sel("abl-pred") {
		t, err := ropsim.AblationPredictor(o)
		if err != nil {
			fail(err)
		} else {
			print(t)
		}
	}
	if sel("policy") {
		t, err := ropsim.PolicyComparison(o)
		if err != nil {
			fail(err)
		} else {
			print(t)
		}
	}
	if sel("abl-page") {
		t, err := ropsim.AblationPagePolicy(o)
		if err != nil {
			fail(err)
		} else {
			print(t)
		}
	}
	if sel("future-bank") {
		t, err := ropsim.FutureBankRefresh(o)
		if err != nil {
			fail(err)
		} else {
			print(t)
		}
	}
	if sel("abl-fgr") {
		t, err := ropsim.AblationFGR(o)
		if err != nil {
			fail(err)
		} else {
			print(t)
		}
	}
	if sel("xstd") {
		t, err := ropsim.CrossStandard(o)
		if err != nil {
			fail(err)
		} else {
			print(t)
		}
	}
	if sel("policies") {
		t, err := ropsim.Policies(o)
		if err != nil {
			fail(err)
		} else {
			print(t)
		}
	}

	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "ropexp: interrupted")
		finish(exitInterrupted)
	}
	if len(campaignErrs) > 0 {
		fmt.Fprintf(os.Stderr, "ropexp: %d experiment(s) failed\n", len(campaignErrs))
		finish(exitFailure)
	}
	closeCampaign(exitOK)
	flush()
	stopCPUProfile()
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fail(err)
		}
		runtime.GC() // settle allocations so the heap profile is stable
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
		f.Close()
	}
}
