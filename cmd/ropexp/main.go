// Command ropexp regenerates the paper's evaluation artifacts. Each
// experiment id corresponds to one figure or table; "all" runs the whole
// evaluation (see DESIGN.md §4 for the index).
//
//	ropexp -exp fig1
//	ropexp -exp fig2,fig3,fig4,tab1
//	ropexp -exp all -quick
//	ropexp -exp all -jobs 8 -progress
//	ropexp -exp fig10 -v
//	ropexp -exp fig1 -quick -stats-out fig1.stats.json
//	ropexp -exp all -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Independent simulation runs are fanned across -jobs worker goroutines
// (default: GOMAXPROCS). The rendered tables are byte-identical for any
// -jobs value and a fixed seed: results are assembled by submission
// order, never completion order. -stats-out additionally writes every
// run's full metric-registry snapshot (docs/METRICS.md documents the
// schema); the artifact is likewise byte-identical at any -jobs count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"ropsim"
	"ropsim/internal/runner"
)

func main() {
	var (
		exps       = flag.String("exp", "all", "comma-separated experiment ids: fig1 fig2 fig3 fig4 tab1 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 abl-gate abl-pred abl-fgr abl-page policy future-bank, or all")
		quickF     = flag.Bool("quick", false, "reduced run lengths (smoke test scale)")
		insts      = flag.Int64("insts", 0, "override single-core instructions per run")
		minsts     = flag.Int64("minsts", 0, "override per-core instructions of 4-core runs")
		seed       = flag.Int64("seed", 1, "simulation seed")
		verbose    = flag.Bool("v", false, "log every completed run")
		benches    = flag.String("bench", "", "restrict to comma-separated benchmarks")
		jobs       = flag.Int("jobs", 0, "parallel simulation workers (0 = GOMAXPROCS, 1 = serial)")
		progress   = flag.Bool("progress", false, "print per-run progress with ETA to stderr")
		statsOut   = flag.String("stats-out", "", "write every run's metric snapshot to this file (.csv selects CSV, else JSON; see docs/METRICS.md)")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the evaluation to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()

	stopCPUProfile := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		stopCPUProfile = func() { pprof.StopCPUProfile(); f.Close() }
	}

	o := ropsim.FullOptions()
	if *quickF {
		o = ropsim.QuickOptions()
	}
	if *insts > 0 {
		o.Instructions = *insts
	}
	if *minsts > 0 {
		o.MultiInstructions = *minsts
	}
	o.Seed = *seed
	if *verbose {
		o.Progress = os.Stderr
	}
	if *benches != "" {
		o.Benches = strings.Split(*benches, ",")
	}
	if *statsOut != "" {
		o.Artifact = ropsim.NewArtifact()
	}

	// One pool serves every selected experiment, so the final stats
	// line covers the whole evaluation.
	pool := runner.New(*jobs)
	o.Jobs = pool.Jobs()
	o.Pool = pool
	if *progress {
		pool.SetProgress(func(ev runner.Event) {
			if ev.Err != nil {
				fmt.Fprintf(os.Stderr, "[%d/%d] %s FAILED: %v\n", ev.Completed, ev.Submitted, ev.Label, ev.Err)
				return
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %-40s %8s  eta %s\n",
				ev.Completed, ev.Submitted, ev.Label, ev.Duration.Round(1e6), ev.ETA.Round(1e8))
		})
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]
	sel := func(ids ...string) bool {
		if all {
			return true
		}
		for _, id := range ids {
			if want[id] {
				return true
			}
		}
		return false
	}

	out := os.Stdout
	fail := func(err error) {
		stopCPUProfile()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	print := func(tables ...*ropsim.Table) {
		for _, t := range tables {
			t.Fprint(out)
			fmt.Fprintln(out)
		}
	}

	if sel("fig1") {
		t, err := ropsim.Fig1(o)
		if err != nil {
			fail(err)
		}
		print(t)
	}
	if sel("fig2", "fig3", "fig4", "tab1") {
		f2, f3, f4, t1, err := ropsim.RefreshBehaviour(o)
		if err != nil {
			fail(err)
		}
		var show []*ropsim.Table
		if all || want["fig2"] {
			show = append(show, f2)
		}
		if all || want["fig3"] {
			show = append(show, f3)
		}
		if all || want["fig4"] {
			show = append(show, f4)
		}
		if all || want["tab1"] {
			show = append(show, t1)
		}
		print(show...)
	}
	if sel("fig7", "fig8", "fig9") {
		f7, f8, f9, err := ropsim.Fig7to9(o)
		if err != nil {
			fail(err)
		}
		var show []*ropsim.Table
		if all || want["fig7"] {
			show = append(show, f7)
		}
		if all || want["fig8"] {
			show = append(show, f8)
		}
		if all || want["fig9"] {
			show = append(show, f9)
		}
		print(show...)
	}
	if sel("fig10", "fig11") {
		f10, f11, err := ropsim.Fig10and11(o)
		if err != nil {
			fail(err)
		}
		var show []*ropsim.Table
		if all || want["fig10"] {
			show = append(show, f10)
		}
		if all || want["fig11"] {
			show = append(show, f11)
		}
		print(show...)
	}
	if sel("fig12", "fig13", "fig14") {
		f12, f13, f14, err := ropsim.Fig12to14(o)
		if err != nil {
			fail(err)
		}
		var show []*ropsim.Table
		if all || want["fig12"] {
			show = append(show, f12)
		}
		if all || want["fig13"] {
			show = append(show, f13)
		}
		if all || want["fig14"] {
			show = append(show, f14)
		}
		print(show...)
	}
	if sel("abl-gate") {
		t, err := ropsim.AblationGate(o)
		if err != nil {
			fail(err)
		}
		print(t)
	}
	if sel("abl-pred") {
		t, err := ropsim.AblationPredictor(o)
		if err != nil {
			fail(err)
		}
		print(t)
	}
	if sel("policy") {
		t, err := ropsim.PolicyComparison(o)
		if err != nil {
			fail(err)
		}
		print(t)
	}
	if sel("abl-page") {
		t, err := ropsim.AblationPagePolicy(o)
		if err != nil {
			fail(err)
		}
		print(t)
	}
	if sel("future-bank") {
		t, err := ropsim.FutureBankRefresh(o)
		if err != nil {
			fail(err)
		}
		print(t)
	}
	if sel("abl-fgr") {
		t, err := ropsim.AblationFGR(o)
		if err != nil {
			fail(err)
		}
		print(t)
	}

	if s := pool.Stats(); s.Completed > 0 {
		fmt.Fprintf(os.Stderr, "runner: %s\n", s)
	}

	if o.Artifact != nil {
		if err := o.Artifact.WriteFile(*statsOut); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "stats: %d run snapshots -> %s\n", o.Artifact.Len(), *statsOut)
	}
	stopCPUProfile()
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fail(err)
		}
		runtime.GC() // settle allocations so the heap profile is stable
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
		f.Close()
	}
}
