// Worker mode: ropexp -connect attaches this process to a campaign
// coordinator as a worker — identical in protocol and exit-code
// contract to cmd/ropworker.

package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"ropsim"
	"ropsim/internal/campaign"
	"ropsim/internal/runner"
)

// workerMain runs the worker loop against the coordinator at addr and
// returns the process exit code: 0 on a clean campaign drain, 3 on
// first-signal interruption, 1 on an unrecoverable error. A second
// signal aborts with 130 (the shared contract in internal/campaign).
func workerMain(addr string, jobs int, verbose bool) int {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigCh
		fmt.Fprintf(os.Stderr, "ropexp: %v: cancelling in-flight runs (signal again to abort immediately)\n", s)
		cancel()
		<-sigCh
		os.Exit(campaign.ExitAborted)
	}()

	pool := runner.New(jobs)
	host, _ := os.Hostname()
	name := fmt.Sprintf("%s-%d", host, os.Getpid())
	logf := func(string, ...any) {}
	if verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	// Each leased run goes through the shared pool as a single-task
	// batch: panics become errors, transient failures retry, and the
	// pool accumulates campaign-wide runner statistics.
	exec := ropsim.RemoteExec(func(ctx context.Context, label string, cfg ropsim.Config) (*ropsim.Result, error) {
		rs, err := runner.Run(ctx, pool, []runner.Task[*ropsim.Result]{{
			Label: label,
			Run:   func(ctx context.Context) (*ropsim.Result, error) { return ropsim.RunCtx(ctx, cfg) },
		}})
		if err != nil {
			return nil, err
		}
		return rs[0], nil
	})

	err := campaign.Work(ctx, campaign.WorkerOptions{
		Addr:  addr,
		Name:  name,
		Slots: pool.Jobs(),
		Exec:  exec,
		Clock: runner.WallClock{},
		Logf:  logf,
	})
	if s := pool.Stats(); s.Completed > 0 {
		fmt.Fprintf(os.Stderr, "runner: %s\n", s)
	}
	switch {
	case err == nil:
		return campaign.ExitOK
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "ropexp: interrupted")
		return campaign.ExitInterrupted
	default:
		fmt.Fprintln(os.Stderr, err)
		return campaign.ExitFailure
	}
}
