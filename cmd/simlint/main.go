// Command simlint runs the simulation lint suite (ropsim/internal/lint)
// over the module: determinism, unit-safety, event-queue discipline and
// metrics-registration analyzers, plus validation of the //simlint:
// escape-hatch annotations themselves. Exit status is 1 when any
// finding is reported, 2 on a load failure, 0 on a clean tree.
//
// Usage:
//
//	simlint [-unused] [packages]
//
// With no package patterns it analyzes ./... from the current
// directory. The -unused flag additionally reports justified
// annotations that suppress nothing — stale escape hatches whose
// violations have since been fixed (the `make lint-fix-check` mode).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ropsim/internal/lint"
)

func main() {
	unused := flag.Bool("unused", false,
		"also report justified simlint annotations that suppress nothing (stale escape hatches)")
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintf(out, "usage: simlint [-unused] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(out, "  %-16s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(out, "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	units, err := lint.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	diags := lint.Run(units, lint.All(), lint.Options{ReportUnusedAnnotations: *unused})
	cwd, _ := os.Getwd()
	for _, d := range diags {
		d.Pos.Filename = relPath(cwd, d.Pos.Filename)
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// relPath shortens an absolute diagnostic path to be relative to the
// working directory when possible.
func relPath(cwd, path string) string {
	if cwd == "" {
		return path
	}
	if rel, err := filepath.Rel(cwd, path); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		return rel
	}
	return path
}
