// Command simlint runs the simulation lint suite (ropsim/internal/lint)
// over the module: determinism, unit-safety, event-queue discipline,
// metrics-registration, and — via the cross-package fact engine —
// concurrency and hostile-input analyzers, plus validation of the
// //simlint: escape-hatch annotations themselves. Exit status is 1 when
// any finding is reported, 2 on a load failure, 0 on a clean tree.
//
// Usage:
//
//	simlint [-unused] [-json] [-time] [-factcache dir] [packages]
//
// With no package patterns it analyzes ./... from the current
// directory. The -unused flag additionally reports justified
// annotations that suppress nothing — stale escape hatches whose
// violations have since been fixed (the `make lint-fix-check` mode).
// -json emits findings as a JSON array (file/line/column/analyzer/
// message/justification) for machine consumers — CI wires a GitHub
// problem matcher to the default text form instead. -time prints a
// per-analyzer wall-time summary to stderr. -factcache points at a
// directory where serialized per-package fact summaries are reused
// across runs (CI restores it with actions/cache).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ropsim/internal/lint"
)

// jsonFinding is the -json wire form of one diagnostic.
type jsonFinding struct {
	File          string `json:"file"`
	Line          int    `json:"line"`
	Column        int    `json:"column"`
	Analyzer      string `json:"analyzer"`
	Message       string `json:"message"`
	Justification string `json:"justification,omitempty"`
}

func main() {
	unused := flag.Bool("unused", false,
		"also report justified simlint annotations that suppress nothing (stale escape hatches)")
	jsonOut := flag.Bool("json", false,
		"emit findings as a JSON array on stdout instead of text lines")
	timing := flag.Bool("time", false,
		"print a per-analyzer wall-time summary to stderr")
	factCache := flag.String("factcache", "",
		"directory for serialized cross-package fact summaries, reused when sources and dependency facts are unchanged")
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintf(out, "usage: simlint [-unused] [-json] [-time] [-factcache dir] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(out, "  %-16s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(out, "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	units, err := lint.LoadCached(".", patterns, *factCache)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	diags, timings := lint.RunTimed(units, lint.All(), lint.Options{ReportUnusedAnnotations: *unused})
	cwd, _ := os.Getwd()
	for i := range diags {
		diags[i].Pos.Filename = relPath(cwd, diags[i].Pos.Filename)
	}
	if *jsonOut {
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				File:          d.Pos.Filename,
				Line:          d.Pos.Line,
				Column:        d.Pos.Column,
				Analyzer:      d.Analyzer,
				Message:       d.Message,
				Justification: d.Justification,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if *timing {
		fmt.Fprintf(os.Stderr, "simlint: analyzer wall time over %d package(s):\n", len(units))
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "  %-16s %v\n", t.Name, t.Elapsed.Round(timeRound))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// timeRound is the display granularity of the -time summary.
const timeRound = 10_000 // 10µs in nanoseconds

// relPath shortens an absolute diagnostic path to be relative to the
// working directory when possible.
func relPath(cwd, path string) string {
	if cwd == "" {
		return path
	}
	if rel, err := filepath.Rel(cwd, path); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
		return rel
	}
	return path
}
