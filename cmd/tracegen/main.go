// Command tracegen materializes a synthetic benchmark trace to a file in
// the binary (ROP1) or text format, for inspection or for replay by
// external tools.
//
//	tracegen -bench lbm -n 100000 -o lbm.trace
//	tracegen -bench gcc -n 5000 -format text -o -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ropsim/internal/workload"
)

func main() {
	var (
		bench  = flag.String("bench", "libquantum", "benchmark to generate")
		n      = flag.Int("n", 100_000, "number of records")
		out    = flag.String("o", "-", "output file (- for stdout)")
		format = flag.String("format", "binary", "binary | text")
		seed   = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	prof, err := workload.Get(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	recs := workload.Take(workload.NewGenerator(prof, *seed), *n)

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
		w = f
	}

	switch *format {
	case "binary":
		err = workload.WriteBinary(w, recs)
	case "text":
		err = workload.WriteText(w, recs)
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
