// Refresh analysis: reproduce the paper's §III study on one benchmark —
// capture a baseline run's request/refresh timeline and report how many
// refreshes block requests (Fig. 2), how many requests each blocking
// refresh delays (Fig. 3), and the λ/β conditional probabilities that
// drive the ROP prefetch gate (Table I).
package main

import (
	"fmt"
	"os"

	"ropsim"
	"ropsim/internal/analysis"
	"ropsim/internal/dram"
	"ropsim/internal/event"
)

func main() {
	bench := "bzip2"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}

	cfg := ropsim.Default(bench)
	cfg.Instructions = 4_000_000
	cfg.Capture = true
	res, err := ropsim.Run(cfg)
	if err != nil {
		panic(err)
	}

	p := dram.DDR4_1600(ropsim.Refresh1x)
	tl := analysis.NewTimeline(res.Capture, 1)
	fmt.Printf("%s: %d refreshes, %d requests captured\n\n",
		bench, tl.NumRefreshes(), len(res.Capture.Requests))

	fmt.Println("Non-blocking refreshes (no read within k x tRFC of refresh start):")
	for _, k := range []event.Cycle{1, 2, 4} {
		fmt.Printf("  %dx: %.1f%%\n", k, tl.NonBlockingFraction(k*p.RFC)*100)
	}

	mean, max := tl.BlockedStats(p.RFC)
	fmt.Printf("\nBlocked reads per blocking refresh: mean %.2f, max %d\n", mean, max)

	fmt.Println("\nEvent statistics per observational window (k x tREFI):")
	for _, k := range []event.Cycle{1, 2, 4} {
		w := tl.Windows(k * p.REFI)
		fmt.Printf("  %dx: E1=%.2f E2=%.2f coverage=%.2f lambda=%.2f beta=%.2f\n",
			k, w.E1Fraction(), w.E2Fraction(), w.Coverage(), w.Lambda(), w.Beta())
	}
	fmt.Println("\nlambda = P{reads after refresh | requests before}; beta = P{quiet after | quiet before}.")
	fmt.Println("High lambda and beta mean the ROP gate's prefetch decisions will be accurate.")
}
