// Multiprogram: run one of the paper's 4-core workload mixes under the
// three systems of Figure 10 — Baseline (rank-interleaved), Baseline-RP
// (rank-partitioned), and ROP (rank partitioning + refresh-oriented
// prefetching) — and report weighted speedups and energy.
package main

import (
	"fmt"
	"os"

	"ropsim"
)

func main() {
	mixName := "WL1"
	if len(os.Args) > 1 {
		mixName = os.Args[1]
	}
	var mix ropsim.Mix
	found := false
	for _, m := range ropsim.Mixes() {
		if m.Name == mixName {
			mix, found = m, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown mix %q (use WL1..WL6)\n", mixName)
		os.Exit(2)
	}
	fmt.Printf("%s = %v\n\n", mix.Name, mix.Members)

	const insts = 2_000_000

	// Per-benchmark alone IPCs (denominator of Eq. 4), on the same
	// 4-rank platform.
	alone := make([]float64, len(mix.Members))
	for i, b := range mix.Members {
		cfg := ropsim.Default(b)
		cfg.Ranks = 4
		cfg.LLCBytes = ropsim.Default("a", "b", "c", "d").LLCBytes
		cfg.Instructions = insts
		res, err := ropsim.Run(cfg)
		if err != nil {
			panic(err)
		}
		alone[i] = res.Cores[0].IPC
	}

	type system struct {
		name      string
		mode      ropsim.Mode
		partition bool
	}
	systems := []system{
		{"Baseline", ropsim.ModeBaseline, false},
		{"Baseline-RP", ropsim.ModeBaseline, true},
		{"ROP", ropsim.ModeROP, true},
	}
	var wsBase, enBase float64
	for _, s := range systems {
		cfg := ropsim.Default(mix.Members...)
		cfg.Mode = s.mode
		cfg.RankPartition = s.partition
		cfg.Instructions = insts
		res, err := ropsim.Run(cfg)
		if err != nil {
			panic(err)
		}
		ws := ropsim.WeightedSpeedup(res, alone)
		if s.name == "Baseline" {
			wsBase, enBase = ws, res.TotalEnergy()
		}
		fmt.Printf("%-12s weighted speedup %.3f (norm %.3f)  energy %.4g J (norm %.3f)\n",
			s.name, ws, ws/wsBase, res.TotalEnergy(), res.TotalEnergy()/enBase)
		if s.mode == ropsim.ModeROP {
			fmt.Printf("%-12s SRAM: served=%d hitRate=%.2f\n", "", res.SRAMServed, res.SRAMHitRate)
		}
	}
}
