// Quickstart: run the same benchmark under the three memory systems the
// paper compares — auto-refresh baseline, ROP, and the idealized
// no-refresh memory — and print how much of the refresh overhead ROP
// recovers.
package main

import (
	"fmt"

	"ropsim"
)

func main() {
	const bench = "libquantum"
	fmt.Printf("Running %s under three memory systems...\n\n", bench)

	ipc := map[ropsim.Mode]float64{}
	var hitRate float64
	for _, mode := range []ropsim.Mode{ropsim.ModeBaseline, ropsim.ModeROP, ropsim.ModeNoRefresh} {
		cfg := ropsim.Default(bench)
		cfg.Mode = mode
		cfg.Instructions = 3_000_000
		res, err := ropsim.Run(cfg)
		if err != nil {
			panic(err)
		}
		ipc[mode] = res.Cores[0].IPC
		fmt.Printf("%-10v IPC=%.4f refreshes=%d energy=%.4g J\n",
			mode, res.Cores[0].IPC, res.Refreshes, res.TotalEnergy())
		if mode == ropsim.ModeROP {
			hitRate = res.SRAMHitRate
			fmt.Printf("           SRAM buffer: %d reads served, hit rate %.2f\n",
				res.SRAMServed, res.SRAMHitRate)
		}
	}

	gap := ipc[ropsim.ModeNoRefresh] - ipc[ropsim.ModeBaseline]
	got := ipc[ropsim.ModeROP] - ipc[ropsim.ModeBaseline]
	fmt.Printf("\nRefresh overhead (baseline vs ideal): %.2f%% of IPC\n",
		gap/ipc[ropsim.ModeNoRefresh]*100)
	if gap > 0 {
		fmt.Printf("ROP recovered %.0f%% of that gap (buffer hit rate %.2f)\n",
			got/gap*100, hitRate)
	}
}
