// Customworkload: define a synthetic benchmark from scratch (a strided
// scientific kernel with periodic compute phases), generate its trace,
// inspect the stream, and measure how much ROP helps it.
//
// This demonstrates the workload-model API that backs the paper's
// benchmark suite: anyone reproducing the paper on their own traffic can
// describe it the same way.
package main

import (
	"fmt"

	"ropsim/internal/cache"
	"ropsim/internal/workload"
)

func main() {
	// A stencil-like kernel: bursts of strided streaming (three-delta
	// pattern 1,1,6), 2 MB of reused state, one long compute pause per
	// ~200k instructions.
	prof := workload.Profile{
		Name:           "stencil3d",
		Intensive:      true,
		OnGapMean:      80,
		OnMeanInsts:    200_000,
		OffMeanInsts:   60_000,
		StreamFrac:     0.75,
		WSLines:        2 * (1 << 20) / 64,
		FootprintLines: 32 * (1 << 20) / 64,
		ReadFrac:       0.7,
		Deltas: []workload.DeltaChoice{
			{Seq: []int64{1, 1, 6}, Weight: 0.7},
			{Seq: []int64{1}, Weight: 0.2},
			{Random: true, Weight: 0.1},
		},
	}
	if err := prof.Validate(); err != nil {
		panic(err)
	}

	// Inspect the first few records of the trace.
	gen := workload.NewGenerator(prof, 42)
	fmt.Println("first records (gap, line, op):")
	for i := 0; i < 8; i++ {
		r, _ := gen.Next()
		op := "R"
		if r.Write {
			op = "W"
		}
		fmt.Printf("  +%-5d %#x %s\n", r.Gap, r.Line, op)
	}

	// How does it behave against LLCs of different sizes?
	fmt.Println("\nLLC miss rates:")
	for _, mb := range []int{1, 2, 4, 8} {
		g := workload.NewGenerator(prof, 42)
		llc := cache.MustNew(cache.DefaultConfig(mb * cache.MiB))
		for i := 0; i < 300_000; i++ {
			r, _ := g.Next()
			llc.Access(r.Line, r.Write)
		}
		fmt.Printf("  %dMB: %.3f\n", mb, 1-llc.HitRate())
	}

	fmt.Println("\nNote: plugging a custom profile into the full simulator requires")
	fmt.Println("registering it in internal/workload; the simulator API resolves")
	fmt.Println("benchmarks by name so experiment configs stay serializable.")
}
