package ropsim

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ropsim/internal/runner"
)

// faultOptions is a tiny campaign used by the fault-injection tests:
// fig1 over two benchmarks = four runs.
func faultOptions(t *testing.T) ExpOptions {
	t.Helper()
	o := QuickOptions()
	o.Instructions = 60_000
	o.Benches = []string{"libquantum", "bzip2"}
	return o
}

// openTestJournal opens a journal in the test's temp dir.
func openTestJournal(t *testing.T, name string) *Journal {
	t.Helper()
	j, err := OpenJournal(filepath.Join(t.TempDir(), name))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func TestFaultCampaignPanicIsolatedUnderRunToCompletion(t *testing.T) {
	// One injected panic out of four runs: the campaign must finish the
	// three siblings, checkpoint them, and report exactly one labeled
	// failure — never crash the process.
	o := faultOptions(t)
	o.Journal = openTestJournal(t, "campaign.jsonl")
	pool := runner.New(2)
	pool.SetPolicy(runner.RunToCompletion)
	pool.SetFaultHook(func(label string, attempt int) error {
		if label == "fig1/bzip2/base" {
			panic("injected campaign fault")
		}
		return nil
	})
	o.Pool = pool
	o.Jobs = pool.Jobs()

	_, err := Fig1(o)
	var be *runner.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("Fig1 returned %v, want *runner.BatchError", err)
	}
	if len(be.Failures) != 1 {
		t.Fatalf("failures = %+v, want exactly one", be.Failures)
	}
	f := be.Failures[0]
	if f.Label != "fig1/bzip2/base" {
		t.Errorf("failed label = %q", f.Label)
	}
	var pe *runner.PanicError
	if !errors.As(f.Err, &pe) || !strings.Contains(pe.Error(), "injected campaign fault") {
		t.Errorf("failure error = %v, want the injected PanicError", f.Err)
	}
	if got := o.Journal.Len(); got != 3 {
		t.Errorf("journal holds %d runs, want the 3 surviving siblings", got)
	}
	if s := pool.Stats(); s.Panicked != 1 {
		t.Errorf("pool panicked count = %d, want 1", s.Panicked)
	}
}

func TestFaultCampaignFailFastCancelsQuickly(t *testing.T) {
	o := faultOptions(t)
	pool := runner.New(1) // serial: deterministic skip count
	pool.SetFaultHook(func(label string, attempt int) error {
		if label == "fig1/libquantum/base" { // first submitted task
			return fmt.Errorf("injected transient-looking failure")
		}
		return nil
	})
	o.Pool = pool
	o.Jobs = 1

	_, err := Fig1(o)
	var be *runner.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("Fig1 returned %v, want *runner.BatchError", err)
	}
	if be.Skipped != 3 {
		t.Errorf("skipped = %d, want 3 (fail-fast after the first of four)", be.Skipped)
	}
	msg := err.Error()
	for _, want := range []string{"fig1/libquantum/base", "skipped", "pool:"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func TestFaultCampaignRetryRecoversTransient(t *testing.T) {
	// Simulation tasks are not marked Transient, so the retry loop must
	// NOT mask a simulation failure...
	o := faultOptions(t)
	pool := runner.New(1)
	pool.SetRetry(2, 0)
	failures := map[string]int{}
	pool.SetFaultHook(func(label string, attempt int) error {
		if label == "fig1/bzip2/noref" && failures[label] == 0 {
			failures[label]++
			return fmt.Errorf("spurious failure")
		}
		return nil
	})
	o.Pool = pool
	o.Jobs = 1
	if _, err := Fig1(o); err == nil {
		t.Fatal("non-transient task was retried into success")
	}
	if s := pool.Stats(); s.Retried != 0 {
		t.Errorf("retried = %d for non-transient tasks", s.Retried)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default("bzip2")
	cfg.Instructions = 40_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hash := ConfigHash(cfg)
	if err := j.Record(hash, "roundtrip/bzip2", res); err != nil {
		t.Fatal(err)
	}
	// Re-recording the same hash is a no-op, not a duplicate line.
	if err := j.Record(hash, "roundtrip/bzip2", res); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 1 {
		t.Fatalf("reloaded journal has %d entries, want 1", j2.Len())
	}
	e, ok := j2.Lookup(hash)
	if !ok {
		t.Fatal("recorded hash missing after reload")
	}
	if e.Label != "roundtrip/bzip2" {
		t.Errorf("label = %q", e.Label)
	}
	// The metric snapshot must survive the JSON round trip exactly —
	// resumed campaigns re-record it into the artifact byte-for-byte.
	var a, b bytes.Buffer
	art1, art2 := NewArtifact(), NewArtifact()
	art1.Record("x", res.Metrics)
	art2.Record("x", e.Result.Metrics)
	if err := art1.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := art2.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("journaled metrics do not round-trip byte-exactly")
	}
	if e.Result.Cores[0].IPC != res.Cores[0].IPC || e.Result.ElapsedBus != res.ElapsedBus {
		t.Error("journaled result fields differ from the live result")
	}
}

func TestJournalToleratesTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default("bzip2")
	cfg.Instructions = 40_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(ConfigHash(cfg), "tail/bzip2", res); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Simulate a campaign killed mid-append: a half-written JSON line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"schema":1,"hash":"deadbeef","label":"trunc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("truncated journal failed to open: %v", err)
	}
	defer j2.Close()
	if j2.Len() != 1 {
		t.Errorf("entries = %d, want 1 (the complete line)", j2.Len())
	}
	if _, ok := j2.Lookup("deadbeef"); ok {
		t.Error("partial trailing line was loaded")
	}
}

func TestConfigHashIgnoresRobustnessKnobs(t *testing.T) {
	cfg := Default("bzip2")
	base := ConfigHash(cfg)
	varied := cfg
	varied.Check = true
	varied.RunTimeout = 1e9
	varied.LivelockEvents = 123
	if ConfigHash(varied) != base {
		t.Error("sanitizer/watchdog knobs changed the journal key")
	}
	other := cfg
	other.Seed = 2
	if ConfigHash(other) == base {
		t.Error("seed change did not change the journal key")
	}
	if ConfigHash(Default("gcc")) == base {
		t.Error("benchmark change did not change the journal key")
	}
}

func TestFaultResumeProducesIdenticalArtifact(t *testing.T) {
	// A campaign interrupted after some runs and resumed from its
	// journal must write the same artifact bytes as one uninterrupted
	// campaign. The "interruption" here is in-process: the first pass
	// journals only half the runs via a fail-fast injected error.
	path := filepath.Join(t.TempDir(), "resume.jsonl")

	// Reference: uninterrupted campaign.
	ref := faultOptions(t)
	ref.Artifact = NewArtifact()
	if _, err := Fig1(ref); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := ref.Artifact.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}

	// Pass 1: serial, fails on the third submitted run; two runs are
	// journaled before the abort.
	o1 := faultOptions(t)
	j1, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	pool1 := runner.New(1)
	pool1.SetFaultHook(func(label string, attempt int) error {
		if label == "fig1/bzip2/base" {
			return fmt.Errorf("injected interruption")
		}
		return nil
	})
	o1.Pool = pool1
	o1.Jobs = 1
	o1.Journal = j1
	if _, err := Fig1(o1); err == nil {
		t.Fatal("injected failure did not surface")
	}
	j1.Close()
	if n, err := os.ReadFile(path); err != nil || len(n) == 0 {
		t.Fatalf("journal not flushed before abort: %v", err)
	}

	// Pass 2: resume from the sidecar, no fault. Journaled runs are
	// served without re-simulating; the rest run fresh.
	o2 := faultOptions(t)
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	o2.Journal = j2
	o2.Artifact = NewArtifact()
	if _, err := Fig1(o2); err != nil {
		t.Fatal(err)
	}
	if j2.Hits() == 0 {
		t.Error("resume re-simulated every run (no journal hits)")
	}
	var got bytes.Buffer
	if err := o2.Artifact.WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Error("resumed artifact differs from the uninterrupted artifact")
	}
}
