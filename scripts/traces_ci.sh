#!/bin/sh
# traces_ci.sh — the trace-format round-trip and replay gate.
#
# For every committed workload-zoo trace (testdata/traces/*.ropt) it
# checks the full format contract end to end:
#
#   1. `roptrace validate` accepts the committed file;
#   2. .ropt -> text -> .ropt round-trips byte-identically (the .ropt
#      encoding is canonical, so any re-encode of the same records must
#      reproduce the committed bytes exactly — see docs/TRACES.md);
#   3. a checked (-check) simulator run driven by the pointer trace
#      produces a metric snapshot byte-identical to the committed
#      replay golden (testdata/traces/pointer_replay.golden.json);
#   4. `go test ./internal/trace/` re-runs the package suite, which
#      includes the FuzzTraceText / FuzzRoptDecode seed corpora as
#      plain regression tests.
#
# Used by `make traces` and the CI `traces` job. Run from the repo
# root; the replay golden's run label embeds the repo-relative trace
# path, so the working directory matters.
set -eu

dir="$(mktemp -d)"
trap 'rm -rf "$dir"' EXIT INT TERM

go build -o "$dir/roptrace" ./cmd/roptrace
go build -o "$dir/ropsim" ./cmd/ropsim

for f in testdata/traces/*.ropt; do
    name="$(basename "$f" .ropt)"
    echo "== $name: validate + text round-trip =="
    "$dir/roptrace" validate -in "$f"
    "$dir/roptrace" convert -in "$f" -out "$dir/$name.trace"
    "$dir/roptrace" convert -in "$dir/$name.trace" -out "$dir/$name.ropt"
    cmp "$f" "$dir/$name.ropt"
done

echo "== pointer: checked replay vs committed golden =="
"$dir/ropsim" -bench trace:testdata/traces/pointer.ropt -mode baseline \
    -insts 600000 -check -stats-out "$dir/replay.json" > /dev/null
cmp testdata/traces/pointer_replay.golden.json "$dir/replay.json"

echo "== internal/trace suite (fuzz seed regression) =="
go test ./internal/trace/

echo "traces: round-trip byte-identical, replay matches golden"
