#!/bin/sh
# distributed_ci.sh — the distributed-campaign byte-identity gate.
#
# Builds ropexp and ropworker, renders a single-process golden artifact,
# then re-runs the identical sweep through a coordinator with two
# attached workers, SIGKILLs one worker mid-campaign, and requires the
# distributed artifact to be byte-identical to the golden. The journal
# (dist.jsonl, in the working directory) is left behind on failure so CI
# can upload it, and removed on success.
#
# Used by `make distributed` and the CI `distributed` job. Scale is
# chosen so runs are long enough for the workers to attach and hold
# leases before the campaign drains (quick scale finishes before the
# first reconnect dial lands, which would make the kill vacuous).
set -eu

EXPS="${EXPS:-fig1}"
INSTS="${INSTS:-10000000}"
PORT="${PORT:-$((20000 + $$ % 20000))}"

dir="$(mktemp -d)"
w1= w2= coord=
cleanup() {
    for pid in $w1 $w2 $coord; do
        kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$dir"
}
trap cleanup EXIT INT TERM

go build -o "$dir/ropexp" ./cmd/ropexp
go build -o "$dir/ropworker" ./cmd/ropworker

echo "== golden: single-process -jobs 2 =="
"$dir/ropexp" -exp "$EXPS" -insts "$INSTS" -check -jobs 2 \
    -stats-out "$dir/golden.json" > /dev/null

# Workers first: their seeded, jittered backoff retries the dial until
# the coordinator's listener is up.
"$dir/ropworker" -connect "127.0.0.1:$PORT" -jobs 1 -name ci-w1 -reconnect-for 30s &
w1=$!
"$dir/ropworker" -connect "127.0.0.1:$PORT" -jobs 1 -name ci-w2 -reconnect-for 30s &
w2=$!

echo "== distributed: coordinator + 2 workers, one SIGKILLed mid-run =="
"$dir/ropexp" -exp "$EXPS" -insts "$INSTS" -check -jobs 2 \
    -serve "127.0.0.1:$PORT" -heartbeat 100ms -heartbeat-timeout 500ms \
    -journal dist.jsonl -stats-out "$dir/dist.json" > /dev/null &
coord=$!

sleep 1   # let both workers attach and pull leases
kill -9 "$w1" 2>/dev/null || true
echo "== SIGKILLed worker ci-w1 ($w1) =="

wait "$coord"
coord=

cmp "$dir/golden.json" "$dir/dist.json"
rm -f dist.jsonl
echo "distributed: artifact byte-identical through worker loss"
